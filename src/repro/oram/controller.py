"""The Path ORAM controller.

Implements the full protocol of Section II-B on top of the tree, stash,
PosMap/PLB, tree-top cache, and DRAM model:

* the stash/PosMap/PLB phase (with Freecursive recursion through the merged
  namespace: a PLB miss on a PosMap1 block triggers a PosMap2 consultation,
  and each missing PosMap block costs a full, externally indistinguishable
  path access);
* the path read phase (cached top levels are free; deeper levels generate
  ``Z_l`` block reads per level through the DRAM model);
* the block remap phase (uniform random leaf; the parent PosMap block,
  which translation pinned in the PLB, is dirtied);
* the path write phase (greedy bottom-up placement from the stash);
* background eviction (Ren et al.) when the stash exceeds its threshold;
* timing-channel protection (Fletcher et al.): one path access per T
  cycles, with dummy paths — or IR-DWB conversions — filling empty slots;
* the LLC-D delayed remapping policy (Nagarajan et al.) as an alternative
  remap policy;
* dirty PLB evictions written back through full ORAM accesses.

The controller is deliberately *stateless per request chain*: at every
issue slot it recomputes the next path the head request needs from current
PLB/stash state.  Chains therefore interleave naturally with background
evictions and internal PosMap write-backs.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, List, Optional, Set, Tuple

from .. import stats_keys as sk
from ..config import SystemConfig
from ..errors import ProtocolError
from ..mem.dram import DRAMModel
from ..mem.layout import TreeLayout
from ..obs import events as ev
from ..perf.native import fastpath as _fastpath
from ..stats import Stats
from .plb import PLB
from .posmap import PositionMap
from .stash import Stash
from .tree import EMPTY, ORAMTree
from .treetop import TreeTopCache
from .types import (
    BlockKind,
    Namespace,
    PathAccessRecord,
    PathType,
    Request,
    RequestKind,
)

#: Latency charged for requests served entirely on chip (stash, S-Stash,
#: or tree-top hits): SRAM lookups plus controller occupancy.
ONCHIP_LATENCY = 20

#: Pre-rendered per-path-type stat keys (the write/read phases are hot).
_PATHS_KEY = {pt: sk.paths_key(pt) for pt in PathType}
_MEM_BLOCKS_KEY = {pt: sk.mem_blocks_key(pt) for pt in PathType}

#: After this many back-to-back eviction slots one queued request is let
#: through, preventing starvation during eviction storms.
MAX_CONSECUTIVE_EVICTIONS = 50

#: Per-phase wall-time keys, in the order the batch kernel reports them.
_BATCH_TIMING_KEYS = (
    sk.ENGINE_BATCH_RNG_NS,
    sk.ENGINE_BATCH_READ_DRAM_NS,
    sk.ENGINE_BATCH_STASH_NS,
    sk.ENGINE_BATCH_PLACE_NS,
    sk.ENGINE_BATCH_WRITE_DRAM_NS,
)


@dataclass
class SlotResult:
    """Outcome of one controller decision slot."""

    issued_path: bool
    path_type: Optional[PathType]
    start: int
    finish_read: int
    finish_write: int
    completions: List[Request] = field(default_factory=list)

    @property
    def finish(self) -> int:
        return self.finish_write


class PathORAMController:
    """Freecursive Path ORAM controller with pluggable IR-ORAM extensions."""

    #: Whether :meth:`run_dummy_batch` may use the native whole-batch
    #: kernel.  Subclasses that override the per-path protocol (Rho's
    #: two-tree scheduling, Palermo-style decoupling) must set this False
    #: so batches fall back to per-slot stepping through their overrides.
    SUPPORTS_NATIVE_BATCH = True

    def __init__(
        self,
        config: SystemConfig,
        stats: Optional[Stats] = None,
        rng: Optional[random.Random] = None,
        treetop: Optional[TreeTopCache] = None,
        delayed_remap: bool = False,
    ) -> None:
        self.config = config
        self.oram = config.oram
        self.stats = stats if stats is not None else Stats()
        self.rng = rng if rng is not None else random.Random(config.seed)

        self.namespace = Namespace(self.oram)
        self.tree = ORAMTree(self.oram)
        self.stash = Stash(self.oram.stash_capacity, self.stats)
        self.stash.configure_path_index(self.oram.levels)
        self.posmap = PositionMap(self.namespace, self.oram.leaves, self.rng)
        self.plb = PLB(self.oram, self.stats)
        self.layout = TreeLayout(self.oram, config.dram)
        self.dram = DRAMModel(config.dram, self.stats)
        self.treetop = treetop if treetop is not None else TreeTopCache(
            self.oram, self.stats
        )
        self.delayed_remap = delayed_remap

        #: optional IR-DWB engine (duck-typed; see repro.core.ir_dwb)
        self.dwb = None
        #: optional security observer receiving PathAccessRecord objects
        self.observer: Optional[Callable[[PathAccessRecord], None]] = None
        #: optional conformance hook receiving every non-``None``
        #: :class:`SlotResult` (see :mod:`repro.validate`); must be
        #: read-only with respect to controller state, counters, and RNG
        self.slot_observer: Optional[Callable[[SlotResult], None]] = None
        #: when True, classify write-phase placements for Fig. 5
        self.track_migration = False

        #: leaf -> (decomposed DRAM triples, block count) for one path;
        #: plain integers (flat bank index, channel, row), valid for every
        #: DRAM model built from the same config, so the table may be
        #: shared across runs (see :meth:`adopt_artifacts`).
        self._path_dram: dict = {}
        self._rebind_native()
        self._z_list = list(self.oram.z_per_level)

        #: ``engine.batch.*`` bookkeeping for :meth:`run_dummy_batch`
        #: (calls, paths, per-phase nanoseconds); surfaced through the
        #: stats snapshot by the API layer after the run completes.
        self.batch_counters: dict = {}
        #: cached 29-slot context tuple handed to the native batch kernel;
        #: rebuilt lazily, invalidated whenever a referenced container is
        #: replaced (artifact adoption, unpickling).
        self._batch_ctx = None
        #: per-leaf DRAM triples packed into the kernel's byte form;
        #: filled lazily by the kernel (or eagerly by
        #: :meth:`warm_path_caches`), reset whenever the layout changes.
        self._packed_triples: dict = {}

        self.queue: Deque[Request] = deque()
        #: PosMap blocks evicted from the PLB whose re-insertion into the
        #: tree is waiting for their parent mapping (a victim buffer).
        self.internal_queue: Deque[int] = deque()
        self._limbo: set = set()
        self.path_count = 0
        self._consecutive_evictions = 0
        self._initialize_tree()

    def _rebind_native(self) -> None:
        """(Re)derive the optional C-kernel bindings from current state.

        The read-phase bulk fill is valid for every scheme (tree-top
        removal hooks run in Python on the returned top blocks); the whole
        write phase is only valid for the ungated dedicated tree-top
        cache, whose placement hooks are bare counters (S-Stash schemes
        gate placement and keep the Python placement loop, with only the
        pool grouping in C).  Called from ``__init__`` and again after
        unpickling: the kernel module is process-local state that cannot
        cross a checkpoint, so :meth:`__setstate__` rebinds it here.
        """
        self._native_bulk = (
            _fastpath
            if _fastpath is not None and self.oram.levels < 64
            else None
        )
        self._native = (
            self._native_bulk
            if self._native_bulk is not None
            and type(self.treetop) is TreeTopCache
            else None
        )

    # ------------------------------------------------------------------
    # pickling (mid-run checkpoints)
    # ------------------------------------------------------------------
    # Controllers are snapshotted mid-run by repro.sim.checkpoint.  Three
    # kinds of attribute cannot (or must not) cross the pickle boundary:
    # the C kernel bindings (module objects, process-local), and the two
    # observer hooks (arbitrary callables — auditors and checkpoint
    # managers re-attach themselves on resume).  Everything else is plain
    # Python state and round-trips exactly, so a resumed run is
    # bit-identical to an uninterrupted one.
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_native"] = None
        state["_native_bulk"] = None
        state["_batch_ctx"] = None
        state["_packed_triples"] = {}
        state["observer"] = None
        state["slot_observer"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._rebind_native()

    # ------------------------------------------------------------------
    # initialization
    # ------------------------------------------------------------------
    def _initialize_tree(self) -> None:
        """Place every namespace block into the tree along its random path."""
        overflow = self.tree.initialize(
            range(self.namespace.total_blocks), self.posmap.leaf_of, self.rng
        )
        for block in overflow:
            self.stash.add(block, self.posmap.leaf_of(block))
        # Mirror top-level residency into the tree-top structure.
        top_levels = self.oram.top_cached_levels
        for level in range(top_levels):
            for position in range(1 << level):
                for block in self.tree.bucket(level, position):
                    if block != EMPTY:
                        self.treetop.on_place(block)
        self.stats.set(sk.INIT_OVERFLOW_BLOCKS, len(overflow))

    # ------------------------------------------------------------------
    # request intake
    # ------------------------------------------------------------------
    def enqueue(self, request: Request) -> None:
        self.queue.append(request)
        self.stats.inc(sk.requests_key(request.kind))
        tracer = self.stats.tracer
        if tracer is not None:
            tracer.emit(
                ev.ACCESS_START,
                request.arrival,
                block=request.block,
                req=request.kind.value,
                write=bool(request.is_write),
            )

    def has_pending_work(self, now: int) -> bool:
        """Real (non-dummy) work the controller could do at time ``now``."""
        if self.internal_queue:
            return True
        if self.stash.over_threshold(self.oram.eviction_threshold):
            return True
        return bool(self.queue) and self.queue[0].arrival <= now

    def has_any_real_work(self) -> bool:
        return bool(self.queue) or bool(self.internal_queue)

    def next_arrival(self) -> Optional[int]:
        return self.queue[0].arrival if self.queue else None

    # ------------------------------------------------------------------
    # the issue slot
    # ------------------------------------------------------------------
    def step(self, now: int, allow_dummy: bool = True) -> Optional[SlotResult]:
        """Run one decision slot at cycle ``now``.

        Drains every request servable without memory traffic, then issues at
        most one path access, chosen by priority: dirty PosMap write-backs,
        background eviction, the head queued request, then (when the timing
        defense is active and ``allow_dummy``) an IR-DWB conversion or a
        plain dummy path.  Returns ``None`` when there is nothing to do.
        """
        self._drain_posmap_reinserts()
        completions = self._drain_instant(now)

        result = self._issue_priority_path(now)
        if result is None and allow_dummy and self.oram.timing_protection:
            result = self._dummy_slot(now)

        if result is not None:
            result.completions = completions + result.completions
        elif completions:
            result = SlotResult(
                issued_path=False,
                path_type=None,
                start=now,
                finish_read=now,
                finish_write=now,
                completions=completions,
            )
        else:
            return None
        observer = self.slot_observer
        if observer is not None:
            observer(result)
        return result

    def _issue_priority_path(self, now: int) -> Optional[SlotResult]:
        if self.internal_queue:
            return self._step_posmap_writeback(now)
        over = self.stash.over_threshold(self.oram.eviction_threshold)
        if over and self.oram.allow_background_eviction:
            if self._consecutive_evictions < MAX_CONSECUTIVE_EVICTIONS or not (
                self.queue and self.queue[0].arrival <= now
            ):
                self._consecutive_evictions += 1
                return self._eviction_path(now)
            self.stats.inc(sk.EVICTION_STORM_YIELDS)
        self._consecutive_evictions = 0
        if self.queue and self.queue[0].arrival <= now:
            return self._step_request(now)
        return None

    # ------------------------------------------------------------------
    # instant (on-chip) servicing
    # ------------------------------------------------------------------
    def _drain_instant(self, now: int) -> List[Request]:
        """Serve, without any path access, every head request that allows it."""
        served: List[Request] = []
        while self.queue and self.queue[0].arrival <= now:
            request = self.queue[0]
            if not self._try_instant(request, now):
                break
            self.queue.popleft()
            served.append(request)
        return served

    def _try_instant(self, request: Request, now: int) -> bool:
        block = request.block

        # 1. stash hit (fully associative, searched by block address)
        if block in self.stash:
            self._serve_stash_hit(request, now)
            return True

        # 2. IR-Stash: S-Stash probe by block address — no PosMap needed.
        if self.treetop.addressable_by_block and self.treetop.lookup_by_address(
            block
        ):
            self._serve_treetop_hit_by_address(request, now)
            return True

        # 3. LLC-D re-insertion: needs only a PLB-resident parent mapping.
        if request.kind is RequestKind.REINSERT:
            if self._translation_chain(block):
                return False
            self._finish_reinsert(request, now)
            return True

        # 4. free translation + tree-top hit: when every PosMap level is in
        #    the PLB and the block sits in the cached top of its path, the
        #    whole access is on chip.
        if self._translation_chain(block):
            return False
        leaf = self.posmap.leaf_of(block)
        self._count_translation(request)
        location = self._find_in_treetop(block, leaf)
        if location is not None:
            self._serve_treetop_hit(request, leaf, location, now)
            return True
        return False

    def _serve_stash_hit(self, request: Request, now: int) -> None:
        request.completion = now + ONCHIP_LATENCY
        self.stats.inc(sk.SERVE_STASH_HITS)
        if request.kind is RequestKind.READ:
            self.stats.bump(sk.HIT_LEVEL, "stash")
        if self.delayed_remap and request.kind is RequestKind.READ:
            # LLC-D: the block moves entirely into the LLC.
            self.stash.remove(request.block)
            self.posmap.discard(request.block)
        # WRITEBACK to a stash-resident block updates it in place; REINSERT
        # of a stash-resident block cannot happen (it would be unmapped).

    def _serve_treetop_hit_by_address(self, request: Request, now: int) -> None:
        """IR-Stash S-Stash hit: served with no PosMap access and no remap."""
        request.completion = now + ONCHIP_LATENCY
        self.stats.inc(sk.SERVE_SSTASH_HITS)
        if request.kind is RequestKind.READ:
            self.stats.bump(sk.HIT_LEVEL, "sstash")
        if self.delayed_remap and request.kind is RequestKind.READ:
            self._remove_from_treetop(request.block)
            self.posmap.discard(request.block)

    def _serve_treetop_hit(
        self, request: Request, leaf: int, location: Tuple[int, int], now: int
    ) -> None:
        """Baseline tree-top hit after translation: on chip, no remap."""
        level, _ = location
        request.completion = now + ONCHIP_LATENCY
        self.stats.inc(sk.SERVE_TREETOP_HITS)
        if request.kind is RequestKind.READ:
            self.stats.bump(sk.HIT_LEVEL, level)
        if self.delayed_remap and request.kind is RequestKind.READ:
            self._remove_from_treetop(request.block)
            self.posmap.discard(request.block)

    def _find_in_treetop(self, block: int, leaf: int) -> Optional[Tuple[int, int]]:
        """Locate ``block`` in the cached-top portion of its path."""
        top = self.oram.top_cached_levels
        shift = self.oram.levels - 1
        for level, slots in self.tree.path_slots(leaf):
            if level >= top:
                break
            if block in slots:
                return level, leaf >> (shift - level)
        return None

    def _remove_from_treetop(self, block: int) -> None:
        """Drop a block from whatever top-level bucket holds it (LLC-D)."""
        leaf = self.posmap.leaf_of(block)
        location = self._find_in_treetop(block, leaf)
        if location is None:
            raise ProtocolError(f"block {block} vanished from tree top")
        level, position = location
        slots = self.tree.bucket(level, position)
        slots[slots.index(block)] = EMPTY
        self.tree.level_used[level] -= 1
        self.treetop.on_remove(block)

    def _finish_reinsert(self, request: Request, now: int) -> None:
        """LLC-D: an evicted LLC line rejoins the tree via the stash."""
        block = request.block
        leaf = self.posmap.restore(block)
        parent = self.namespace.parent_block(block)
        if parent is not None:
            self.plb.mark_dirty(parent)
        self.stash.add(block, leaf)
        request.completion = now + ONCHIP_LATENCY
        self.stats.inc(sk.SERVE_REINSERTS)

    # ------------------------------------------------------------------
    # translation (PosMap / PLB)
    # ------------------------------------------------------------------
    def _posmap_on_chip(self, pm_block: int) -> bool:
        """Is a PosMap block's content available on chip?

        Either resident in the PLB or sitting in the eviction victim
        buffer awaiting re-insertion (its entries stay readable there).
        """
        return self.plb.contains(pm_block) or pm_block in self._limbo

    def _translation_chain(self, block: int) -> List[int]:
        """PosMap blocks that must be fetched before ``block``'s leaf is known.

        Returned deepest-first: ``[pm2, pm1]``, ``[pm1]``, or ``[]``.
        PosMap2 blocks themselves translate through the on-chip PosMap3.

        As a side effect, PosMap blocks that are already on chip but not in
        the PLB — sitting in the stash, or resident in the cached tree top —
        are *promoted* into the PLB for free.  In the dedicated-cache
        baseline a tree-top resident is only reachable once its parent
        mapping is known; with IR-Stash's S-Stash it is found directly by
        block address.
        """
        kind = self.namespace.kind_of(block)
        if kind is BlockKind.POSMAP2:
            return []
        if kind is BlockKind.USER:
            pm1: Optional[int] = self.namespace.posmap1_block(block)
            pm2 = self.namespace.posmap2_block(pm1)
        else:
            pm1 = None
            pm2 = self.namespace.posmap2_block(block)
        # PosMap2 first: its own mapping is always on chip (PosMap3).
        self._try_promote(pm2, parent_available=True)
        pm2_ready = self._posmap_on_chip(pm2)
        if pm1 is None:
            return [] if pm2_ready else [pm2]
        self._try_promote(pm1, parent_available=pm2_ready)
        if self._posmap_on_chip(pm1):
            return []
        return [pm1] if pm2_ready else [pm2, pm1]

    def _try_promote(self, pm_block: int, parent_available: bool) -> None:
        """Move an on-chip-reachable PosMap block into the PLB at no cost.

        The stash is fully associative and searched by block address in
        every design, so stash-resident PosMap blocks always promote free.
        Tree-top residents promote free only under IR-Stash: the S-Stash is
        indexed by block address.  The dedicated-tree-top-cache baseline is
        position-indexed and never consulted for PosMap lookups — a PLB
        miss costs a full path access even when the block's bits happen to
        sit on chip, which is exactly the waste Section IV-C describes.
        """
        del parent_available  # positional lookups are never used here
        if self._posmap_on_chip(pm_block):
            return
        if pm_block in self.stash:
            self.stash.remove(pm_block)
            self.posmap.discard(pm_block)
            self._fill_plb(pm_block)
            self.stats.inc(sk.PLB_STASH_PROMOTIONS)
            return
        if self.oram.top_cached_levels == 0:
            return
        if not self.treetop.addressable_by_block:
            return
        if not self.treetop.lookup_by_address(pm_block):
            return
        if not self.posmap.is_mapped(pm_block):
            return
        leaf = self.posmap.leaf_of(pm_block)
        location = self._find_in_treetop(pm_block, leaf)
        if location is None:
            return
        level, position = location
        slots = self.tree.bucket(level, position)
        slots[slots.index(pm_block)] = EMPTY
        self.tree.level_used[level] -= 1
        self.treetop.on_remove(pm_block)
        self.posmap.discard(pm_block)
        self._fill_plb(pm_block)
        self.stats.inc(sk.PLB_TREETOP_PROMOTIONS)

    def _fill_plb(self, pm_block: int) -> None:
        victim = self.plb.fill(pm_block, dirty=True)
        if victim is not None:
            self._reinsert_posmap_block(victim.block)

    def _count_translation(self, request: Request) -> None:
        if getattr(request, "_translation_counted", False):
            return
        request._translation_counted = True  # type: ignore[attr-defined]
        self.stats.inc(sk.TRANSLATION_COMPLETED)

    # ------------------------------------------------------------------
    # path access primitives
    # ------------------------------------------------------------------
    def _service_path(
        self, leaf: int, path_type: PathType, now: int
    ) -> Tuple[int, int, List[Tuple[int, int]]]:
        """Common read-phase + bookkeeping for every path access.

        Returns ``(finish_read, start, removed_blocks)`` where
        ``removed_blocks`` are the real blocks pulled into the stash.
        """
        triples, blocks = self._path_dram_triples(leaf)
        finish_read = self.dram.service_decomposed(triples, False, now)

        removed = self.tree.read_and_clear(leaf)
        top = self.oram.top_cached_levels
        counters = self.stats.counters
        if self._native_bulk is not None:
            stash = self.stash
            next_seq, top_blocks = self._native_bulk.stash_bulk_add(
                removed,
                stash._entries,
                stash._seq,
                stash._by_prefix,
                stash._prefix_shift,
                stash._next_seq,
                self.posmap._leaf_of,
                top,
            )
            stash._next_seq = next_seq
            occupancy = len(stash._entries)
            if occupancy > stash.peak_occupancy:
                stash.peak_occupancy = occupancy
                tracer = self.stats.tracer
                if tracer is not None:
                    tracer.emit(ev.STASH_HWM, now, occupancy=occupancy)
            if top_blocks:
                treetop_remove = self.treetop.on_remove
                for block in top_blocks:
                    treetop_remove(block)
        else:
            stash_add = self.stash.add
            leaf_of = self.posmap.leaf_of
            treetop_remove = self.treetop.on_remove
            for block, level in removed:
                if level < top:
                    treetop_remove(block)
                stash_add(block, leaf_of(block))

        self.path_count += 1
        counters[_PATHS_KEY[path_type]] += 1
        counters[sk.PATHS_TOTAL] += 1
        counters[sk.MEM_BLOCKS_READ] += blocks
        counters[_MEM_BLOCKS_KEY[path_type]] += 2 * blocks

        tracer = self.stats.tracer
        if tracer is not None:
            tracer.emit(
                ev.PATH_READ,
                now,
                path_type=path_type.value,
                leaf=leaf,
                finish=finish_read,
                blocks=blocks,
            )

        if self.observer is not None:
            addresses = self.layout.path_addresses(leaf)
            record = PathAccessRecord(
                issue_cycle=now,
                leaf=leaf,
                path_type=path_type,
                read_addresses=list(addresses),
                write_addresses=list(addresses),
            )
            self.observer(record)
        return finish_read, now, removed

    def adopt_artifacts(self, layout: TreeLayout, path_dram: dict) -> None:
        """Adopt shared config-derived artifacts from an artifact cache.

        ``layout`` and ``path_dram`` (the leaf -> decomposed-triples table)
        are pure functions of the system config — the triples are plain
        integer lists indexed by the flat bank scheme of
        :meth:`~repro.mem.dram.DRAMModel.decompose_batch` — so adopting
        them changes no simulated cycle or counter, only setup cost.
        Called by :meth:`repro.perf.engine.ArtifactCache.attach` for plain
        ``PathORAMController`` instances (subclasses lay out additional
        trees at shifted base rows and keep private state).
        """
        self.layout = layout
        self._path_dram = path_dram
        # The batch context captures the triples table by reference, and
        # the packed mirror was derived from the replaced table.
        self._batch_ctx = None
        self._packed_triples = {}

    def _path_dram_triples(self, leaf: int) -> Tuple[list, int]:
        """Memoized ``(decomposed triples, block count)`` for one path."""
        cached = self._path_dram.get(leaf)
        if cached is None:
            if _fastpath is not None:
                dram_cfg = self.config.dram
                triples = _fastpath.path_triples(
                    leaf,
                    self.layout._level_meta,
                    dram_cfg.row_blocks,
                    dram_cfg.channels,
                    dram_cfg.banks_per_channel,
                )
                cached = (triples, len(triples) // 3)
            else:
                addresses = self.layout.path_addresses(leaf)
                cached = (
                    self.dram.decompose_batch(addresses),
                    len(addresses),
                )
            if len(self._path_dram) >= ORAMTree.PATH_CACHE_LIMIT:
                # FIFO eviction: drop the oldest entry (dicts preserve
                # insertion order) so hot leaves survive cache pressure
                # instead of being wiped with everything else.
                self._path_dram.pop(next(iter(self._path_dram)))
            self._path_dram[leaf] = cached
        return cached

    def warm_path_caches(self, limit: Optional[int] = None) -> int:
        """Precompute the per-leaf memoization caches; returns leaves warmed.

        Fills the path-slot cache (:meth:`ORAMTree.path_slots`) and the
        DRAM-triple cache (:meth:`_path_dram_triples`) for up to ``limit``
        leaves (default: as many as fit under the cache cap).  This is
        pure address-geometry work — no protocol state (stash, tree
        contents, RNG, DRAM banks) is touched — so warming never changes
        simulated cycles; it only moves the one-time decomposition cost
        out of latency-sensitive regions such as benchmark loops.
        """
        cap = ORAMTree.PATH_CACHE_LIMIT if limit is None else limit
        count = min(self.oram.leaves, cap)
        path_slots = self.tree.path_slots
        triples = self._path_dram_triples
        bulk = self._native_bulk
        pack = getattr(bulk, "pack_triples", None) if bulk else None
        packed = self._packed_triples
        n_banks = len(self.dram.bank_ready)
        n_channels = len(self.dram.bus_free)
        for leaf in range(count):
            path_slots(leaf)
            entry = triples(leaf)
            if pack is not None and leaf not in packed:
                packed[leaf] = pack(entry, n_banks, n_channels)
        return count

    def _write_path(self, leaf: int, finish_read: int, path_type: PathType,
                    preexisting: Optional[Set[int]] = None) -> int:
        """Greedy bottom-up write phase; returns the write completion cycle.

        Placement (:meth:`_place_path`) and the DRAM write burst
        (:meth:`_writeback_path`) are separable — Palermo-style decoupled
        controllers run placement at the slot but defer the burst — and
        here they run back to back.  The placement decisions, and
        therefore every counter and cycle, are bit-identical to
        :meth:`_write_path_reference`.
        """
        self._place_path(leaf, preexisting)
        finish_write = self._writeback_path(leaf, finish_read, path_type)
        self._after_write_phase()
        return finish_write

    def _writeback_path(
        self, leaf: int, finish_read: int, path_type: PathType
    ) -> int:
        """The write phase's DRAM burst for an already-placed path."""
        triples, blocks = self._path_dram_triples(leaf)
        finish_write = self.dram.service_decomposed(triples, True, finish_read)
        self.stats.counters[sk.MEM_BLOCKS_WRITTEN] += blocks
        self._emit_path_write(leaf, path_type, finish_read, finish_write,
                              blocks)
        return finish_write

    def _place_path(
        self, leaf: int, preexisting: Optional[Set[int]] = None
    ) -> None:
        """Greedy bottom-up placement of stash blocks along one path.

        Eviction candidates come pre-grouped by deepest eligible level from
        the stash's leaf-prefix index (:meth:`Stash.path_pools`) instead of
        a full stash scan, and bucket slots are filled directly.
        """
        oram = self.oram
        levels = oram.levels
        top = oram.top_cached_levels
        tree = self.tree
        stash_remove = self.stash.remove
        treetop = self.treetop
        stats = self.stats
        z_per_level = oram.z_per_level
        level_used = tree.level_used
        track = self.track_migration and preexisting is not None

        if self._native is not None and not track:
            stash = self.stash
            try:
                top_placed = self._native.write_path_place(
                    leaf,
                    stash._entries,
                    stash._seq,
                    stash._by_prefix,
                    stash._prefix_shift,
                    stash._prefix_levels,
                    tree.path_slots(leaf),
                    self._z_list,
                    level_used,
                    levels,
                    top,
                    EMPTY,
                )
            except RuntimeError as exc:
                raise ProtocolError(str(exc)) from None
            if top_placed:
                stats.counters[sk.TREETOP_PLACED] += top_placed
            return

        path_slots = tree.path_slots(leaf)
        slot_idx = len(path_slots) - 1
        pools = self.stash.path_pools(leaf)
        pool: List[int] = []
        for level in range(levels - 1, -1, -1):
            sub = pools[level]
            if sub:
                pool.extend(sub)
            z = z_per_level[level]
            if z == 0:
                continue
            slots = path_slots[slot_idx][1]
            slot_idx -= 1
            if not pool:
                continue
            gated = level < top
            rejected: Optional[List[int]] = None
            placed = 0
            while pool and placed < z:
                block = pool.pop()
                if gated and not treetop.may_place(block):
                    if rejected is None:
                        rejected = []
                    rejected.append(block)
                    stats.inc(sk.SSTASH_PLACEMENT_SKIPS)
                    continue
                try:
                    free = slots.index(EMPTY)
                except ValueError:
                    raise ProtocolError(
                        "bucket full during write phase"
                    ) from None
                slots[free] = block
                level_used[level] += 1
                if gated:
                    treetop.on_place(block)
                stash_remove(block)
                placed += 1
                if track:
                    origin = (
                        "preexisting" if block in preexisting else "fetched"
                    )
                    stats.bump(sk.migration_key(origin), level)
            if rejected:
                pool.extend(rejected)

    def _emit_path_write(self, leaf: int, path_type: PathType, start: int,
                         finish: int, blocks: int) -> None:
        tracer = self.stats.tracer
        if tracer is not None:
            tracer.emit(
                ev.PATH_WRITE,
                start,
                path_type=path_type.value,
                leaf=leaf,
                finish=finish,
                blocks=blocks,
            )

    def _write_path_reference(
        self, leaf: int, finish_read: int, path_type: PathType,
        preexisting: Optional[Set[int]] = None,
    ) -> int:
        """The pre-optimization write phase, retained verbatim.

        Kept as the behavioural oracle for the optimized :meth:`_write_path`:
        the seed-sweep equivalence tests run whole simulations against both
        and assert identical cycles and counters.
        """
        oram = self.oram
        levels = oram.levels
        top = oram.top_cached_levels

        # Bucket-sort stash blocks by the deepest level they may occupy.
        pools: List[List[int]] = [[] for _ in range(levels)]
        for block, block_leaf in self.stash.items():
            depth = self.tree.deepest_common_level(leaf, block_leaf)
            pools[depth].append(block)

        pool: List[int] = []
        for level in range(levels - 1, -1, -1):
            pool.extend(pools[level])
            z = oram.z_per_level[level]
            if z == 0 or not pool:
                continue
            position = self.tree.path_position(leaf, level)
            rejected: List[int] = []
            placed = 0
            while pool and placed < z:
                block = pool.pop()
                if level < top and not self.treetop.may_place(block):
                    rejected.append(block)
                    self.stats.inc("sstash.placement_skips")
                    continue
                if not self.tree.place(level, position, block):
                    raise ProtocolError("bucket full during write phase")
                if level < top:
                    self.treetop.on_place(block)
                self.stash.remove(block)
                placed += 1
                if self.track_migration and preexisting is not None:
                    origin = (
                        "preexisting" if block in preexisting else "fetched"
                    )
                    self.stats.bump(f"migration.{origin}", level)
            pool.extend(rejected)

        addresses = self.layout.path_addresses(leaf)
        finish_write = self.dram.service_addresses(addresses, True, finish_read)
        self.stats.inc("mem.blocks_written", len(addresses))
        self._after_write_phase()
        return finish_write

    def _after_write_phase(self) -> None:
        if self.stash.over_threshold(self.oram.eviction_threshold):
            self.stats.inc("eviction.triggers")

    # ------------------------------------------------------------------
    # full accesses
    # ------------------------------------------------------------------
    def full_access(
        self,
        block: int,
        path_type: PathType,
        now: int,
        serve_request: Optional[Request] = None,
        extract_block: bool = False,
    ) -> SlotResult:
        """One complete ORAM access of ``block``: read, remap, write.

        Translation must already be satisfied (the parent PosMap block is in
        the PLB or the block is a PosMap2 block).  With ``extract_block``
        the served block is pulled out of the ORAM entirely instead of
        being remapped (LLC-D's delayed remapping, and Rho's promotion into
        the small tree, both work this way).
        """
        leaf = self.posmap.leaf_of(block)
        preexisting = set(self.stash.blocks()) if self.track_migration else None
        finish_read, start, removed = self._service_path(leaf, path_type, now)

        if block not in self.stash:
            raise ProtocolError(
                f"block {block} absent from path {leaf} and stash"
            )
        if serve_request is not None and serve_request.kind is RequestKind.READ:
            for found_block, level in removed:
                if found_block == block:
                    self.stats.bump(sk.HIT_LEVEL, level)
                    break

        extract = extract_block or (
            self.delayed_remap
            and serve_request is not None
            and serve_request.kind is RequestKind.READ
        )
        if extract:
            # The block leaves the ORAM (LLC-D / Rho promotion).
            self.stash.remove(block)
            self.posmap.discard(block)
        else:
            new_leaf = self.posmap.remap(block)
            self.stash.update_leaf(block, new_leaf)
            parent = self.namespace.parent_block(block)
            if parent is not None:
                if not self._posmap_on_chip(parent):
                    raise ProtocolError(
                        f"parent PosMap block {parent} not on chip at remap"
                    )
                self.plb.mark_dirty(parent)

        if serve_request is not None:
            serve_request.completion = finish_read
            serve_request.paths_used += 1

        finish_write = self._write_path(leaf, finish_read, path_type, preexisting)
        return SlotResult(
            issued_path=True,
            path_type=path_type,
            start=start,
            finish_read=finish_read,
            finish_write=finish_write,
            completions=[serve_request] if serve_request is not None else [],
        )

    def fetch_posmap_block(self, pm_block: int, now: int) -> SlotResult:
        """Fetch a PosMap block through a full path access into the PLB.

        Freecursive PLB semantics are *exclusive*: the fetched block leaves
        the tree and lives in the PLB.  The displaced victim re-enters the
        ORAM through the stash — free when its parent mapping is on chip,
        deferred to the victim buffer (costing parent fetch paths) when not.
        """
        path_type = self.namespace.path_type_for(pm_block)
        result = self.full_access(pm_block, path_type, now, extract_block=True)
        self.stats.inc(sk.POSMAP_ACCESSES)
        tracer = self.stats.tracer
        if tracer is not None:
            tracer.emit(
                ev.POSMAP_FETCH,
                now,
                block=pm_block,
                path_type=path_type.value,
                finish=result.finish_write,
            )
        victim = self.plb.fill(pm_block, dirty=False)
        if victim is not None:
            if victim.dirty:
                self.stats.inc(sk.PLB_DIRTY_EVICTIONS)
            self._reinsert_posmap_block(victim.block)
        return result

    def _reinsert_posmap_block(self, pm_block: int) -> None:
        """Return an evicted PosMap block to the ORAM via the stash."""
        if self._translation_chain(pm_block):
            self.internal_queue.append(pm_block)
            self._limbo.add(pm_block)
            self.stats.inc(sk.PLB_DEFERRED_REINSERTS)
            return
        leaf = self.posmap.restore(pm_block)
        parent = self.namespace.parent_block(pm_block)
        if parent is not None:
            self.plb.mark_dirty(parent)
        self.stash.add(pm_block, leaf)
        self.stats.inc(sk.PLB_REINSERTS)

    def _drain_posmap_reinserts(self) -> None:
        """Complete deferred victim-buffer re-inserts whose parents arrived."""
        pending = len(self.internal_queue)
        for _ in range(pending):
            pm_block = self.internal_queue.popleft()
            self._limbo.discard(pm_block)
            if self._translation_chain(pm_block):
                self.internal_queue.append(pm_block)
                self._limbo.add(pm_block)
            else:
                leaf = self.posmap.restore(pm_block)
                parent = self.namespace.parent_block(pm_block)
                if parent is not None:
                    self.plb.mark_dirty(parent)
                self.stash.add(pm_block, leaf)
                self.stats.inc(sk.PLB_REINSERTS)

    # ------------------------------------------------------------------
    # slot bodies
    # ------------------------------------------------------------------
    def _step_request(self, now: int) -> Optional[SlotResult]:
        request = self.queue[0]
        block = request.block
        chain = self._translation_chain(block)
        tracer = self.stats.tracer
        if chain:
            self.stats.inc(sk.PLB_MISS_FETCHES)
            if tracer is not None:
                tracer.emit(ev.PLB_MISS, now, block=block, fetch=chain[0])
            return self.fetch_posmap_block(chain[0], now)
        if tracer is not None:
            tracer.emit(ev.PLB_HIT, now, block=block)
        self._count_translation(request)

        if request.kind is RequestKind.REINSERT:
            # Translation became free mid-chain; finish instantly.
            self.queue.popleft()
            self._finish_reinsert(request, now)
            return SlotResult(False, None, now, now, now, [request])

        leaf = self.posmap.leaf_of(block)
        location = self._find_in_treetop(block, leaf)
        if location is not None:
            self.queue.popleft()
            self._serve_treetop_hit(request, leaf, location, now)
            return SlotResult(False, None, now, now, now, [request])

        self.queue.popleft()
        path_type = PathType.DATA
        if request.kind is RequestKind.WRITEBACK:
            self.stats.inc(sk.WRITEBACK_PATHS)
        return self.full_access(block, path_type, now, serve_request=request)

    def _step_posmap_writeback(self, now: int) -> SlotResult:
        """Fetch the parent a deferred victim-buffer re-insert is waiting on."""
        pm_block = self.internal_queue[0]
        chain = self._translation_chain(pm_block)
        if not chain:
            raise ProtocolError(
                "victim-buffer entry with a satisfied chain survived draining"
            )
        self.stats.inc(sk.POSMAP_WRITEBACK_PATHS)
        return self.fetch_posmap_block(chain[0], now)

    def _eviction_path(self, now: int) -> SlotResult:
        """Background eviction: read+write a random path, no remap, no serve."""
        leaf = self.rng.randrange(self.oram.leaves)
        preexisting = set(self.stash.blocks()) if self.track_migration else None
        finish_read, start, _ = self._service_path(leaf, PathType.EVICTION, now)
        finish_write = self._write_path(
            leaf, finish_read, PathType.EVICTION, preexisting
        )
        self.stats.inc(sk.EVICTION_PATHS)
        self.stats.inc(sk.EVICTION_CYCLES, finish_write - start)
        return SlotResult(True, PathType.EVICTION, start, finish_read, finish_write)

    def _dummy_slot(self, now: int) -> Optional[SlotResult]:
        """Fill an empty issue slot: IR-DWB conversion if possible, else dummy."""
        if self.dwb is not None:
            converted = self.dwb.dummy_slot(now)
            if converted is not None:
                self.stats.inc(sk.DWB_CONVERTED_SLOTS)
                return converted
        return self.dummy_path(now)

    def dummy_path(self, now: int) -> SlotResult:
        """A dummy path access: random path, read + write back (PT_m)."""
        leaf = self.rng.randrange(self.oram.leaves)
        finish_read, start, _ = self._service_path(leaf, PathType.DUMMY, now)
        finish_write = self._write_path(leaf, finish_read, PathType.DUMMY)
        return SlotResult(True, PathType.DUMMY, start, finish_read, finish_write)

    # ------------------------------------------------------------------
    # whole-batch dummy stepping (native fastpath)
    # ------------------------------------------------------------------
    def _native_batch_mode(self) -> int:
        """Tree-top mode the batch kernel supports for this controller.

        0 = dedicated counter-only cache, 1 = S-Stash gating, -1 = an
        unknown tree-top subclass whose hooks must run in Python.
        """
        if type(self.treetop) is TreeTopCache:
            return 0
        from ..core.ir_stash import SStash

        if type(self.treetop) is SStash:
            return 1
        return -1

    def _build_batch_ctx(self, mode: int) -> tuple:
        """Freeze every container/callable ``run_batch`` mutates or calls.

        All slots are live references into controller state: the kernel
        mutates the same dicts/lists the Python loop would, so stepping
        styles can be mixed freely within one run.
        """
        dram_cfg = self.config.dram
        stash = self.stash
        if mode == 1:
            resident = self.treetop._resident
            set_count = self.treetop._set_count
            set_of = self.treetop.set_of
            ways = self.treetop.ways
        else:
            resident = None
            set_count = None
            set_of = None
            ways = 0
        return (
            self.rng.randrange,
            self.oram.leaves,
            self._path_dram,
            self._path_dram_triples,
            self.tree._path_slots_cache,
            self.tree.path_slots,
            stash._entries,
            stash._seq,
            stash._by_prefix,
            stash._prefix_shift,
            stash._prefix_levels,
            self.posmap._leaf_of,
            self._z_list,
            self.tree.level_used,
            self.oram.levels,
            self.oram.top_cached_levels,
            EMPTY,
            self.dram.bank_ready,
            self.dram.bank_open_row,
            self.dram.bus_free,
            (
                dram_cfg.cpu_cycles_per_dram_cycle,
                dram_cfg.t_rp,
                dram_cfg.t_rcd,
                dram_cfg.t_burst,
                dram_cfg.t_cas + dram_cfg.t_burst,
            ),
            mode,
            resident,
            set_count,
            set_of,
            ways,
            # Kernel-maintained packed triple arrays (possibly pre-warmed
            # by warm_path_caches); reset alongside the triples table.
            self._packed_triples,
            # Direct getrandbits leaf draws are only valid for plain
            # random.Random (the kernel inlines exactly its _randbelow
            # rejection loop); any subclass falls back to randrange.
            self.rng.getrandbits if type(self.rng) is random.Random
            else None,
            self.oram.leaves.bit_length()
            if type(self.rng) is random.Random else 0,
        )

    def _apply_batch_counters(self, n: int, agg: tuple) -> None:
        """Apply one batch's aggregated effects to the stats counters.

        Sums match the per-path increments exactly, and conditional keys
        (tree-top hooks, eviction triggers, S-Stash events) are only
        created when the corresponding per-path code would have created
        them, so the counter *key set* is bit-identical too.
        """
        (blocks, hits, conflicts, placed_top, removed_top, ev_triggers,
         ss_placed, ss_removed, ss_skips) = agg
        counters = self.stats.counters
        self.path_count += n
        counters[_PATHS_KEY[PathType.DUMMY]] += n
        counters[sk.PATHS_TOTAL] += n
        counters[sk.MEM_BLOCKS_READ] += blocks
        counters[_MEM_BLOCKS_KEY[PathType.DUMMY]] += 2 * blocks
        counters[sk.MEM_BLOCKS_WRITTEN] += blocks
        counters[sk.DRAM_ACCESSES] += 2 * blocks
        counters[sk.DRAM_READS] += blocks
        counters[sk.DRAM_WRITES] += blocks
        counters[sk.DRAM_ROW_HITS] += hits
        counters[sk.DRAM_ROW_CONFLICTS] += conflicts
        if placed_top:
            counters[sk.TREETOP_PLACED] += placed_top
        if removed_top:
            counters[sk.TREETOP_REMOVED] += removed_top
        if ev_triggers:
            counters[sk.EVICTION_TRIGGERS] += ev_triggers
        if ss_placed:
            counters[sk.SSTASH_PLACED] += ss_placed
        if ss_removed:
            counters[sk.SSTASH_REMOVED] += ss_removed
        if ss_skips:
            counters[sk.SSTASH_PLACEMENT_SKIPS] += ss_skips

    def run_dummy_batch(
        self,
        now: int,
        max_paths: int,
        interval: int = 0,
        horizon: Optional[int] = None,
        stop_on_threshold: bool = False,
        want_bounds: bool = False,
        collect_timing: bool = False,
    ) -> Tuple[int, int, Optional[List[int]]]:
        """Issue up to ``max_paths`` dummy paths without per-path overhead.

        Bit-identical to the loop ``result = self.dummy_path(now); now =
        max(now + interval, result.finish_write)`` with the same stopping
        rules: stop at ``horizon`` (the next cycle real work could appear)
        and, with ``stop_on_threshold``, as soon as the stash crosses the
        eviction threshold — the caller's per-slot logic then decides what
        the next slot does, exactly as it would have mid-loop.

        Returns ``(issued, new_now, bounds)`` where ``bounds`` (when
        requested) is a flat ``[start, finish_read, finish_write, ...]``
        list for cycle attribution.  Uses the native whole-batch kernel
        when every precondition holds, else a pure-Python loop over
        :meth:`dummy_path`.
        """
        batch = self.batch_counters
        if (
            self._native_bulk is not None
            and self.SUPPORTS_NATIVE_BATCH
            and self.stats.tracer is None
            and self.observer is None
            and self.slot_observer is None
        ):
            mode = self._native_batch_mode()
            if mode >= 0:
                ctx = self._batch_ctx
                if ctx is None:
                    ctx = self._batch_ctx = self._build_batch_ctx(mode)
                stash = self.stash
                n, new_now, next_seq, max_occ, bounds, agg, timings = (
                    self._native_bulk.run_batch(
                        ctx,
                        now,
                        stash._next_seq,
                        interval,
                        max_paths,
                        -1 if horizon is None else horizon,
                        self.oram.eviction_threshold
                        if stop_on_threshold
                        else -1,
                        self.oram.eviction_threshold,
                        want_bounds,
                        collect_timing,
                    )
                )
                stash._next_seq = next_seq
                if max_occ > stash.peak_occupancy:
                    stash.peak_occupancy = max_occ
                if n:
                    self._apply_batch_counters(n, agg)
                    if stop_on_threshold:
                        self._consecutive_evictions = 0
                batch[sk.ENGINE_BATCH_CALLS] = (
                    batch.get(sk.ENGINE_BATCH_CALLS, 0) + 1
                )
                batch[sk.ENGINE_BATCH_PATHS] = (
                    batch.get(sk.ENGINE_BATCH_PATHS, 0) + n
                )
                if timings is not None:
                    for key, value in zip(_BATCH_TIMING_KEYS, timings):
                        batch[key] = batch.get(key, 0) + value
                return n, new_now, bounds

        bounds = [] if want_bounds else None
        n = 0
        while n < max_paths:
            if horizon is not None and now >= horizon:
                break
            if stop_on_threshold and self.stash.over_threshold(
                self.oram.eviction_threshold
            ):
                break
            result = self.dummy_path(now)
            if want_bounds:
                bounds.extend(
                    (result.start, result.finish_read, result.finish_write)
                )
            next_now = now + interval
            now = max(next_now, result.finish_write)
            n += 1
        if stop_on_threshold and n:
            self._consecutive_evictions = 0
        batch[sk.ENGINE_BATCH_FALLBACK_PATHS] = (
            batch.get(sk.ENGINE_BATCH_FALLBACK_PATHS, 0) + n
        )
        return n, now, bounds

    # ------------------------------------------------------------------
    # inspection helpers
    # ------------------------------------------------------------------
    def blocks_per_path(self) -> int:
        return self.oram.blocks_per_path()

    def path_type_counts(self) -> dict:
        return {
            pt.value: self.stats.get(_PATHS_KEY[pt]) for pt in PathType
        }
