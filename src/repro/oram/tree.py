"""The ORAM tree: buckets of (possibly non-uniform) size holding block IDs.

Only block identity is simulated — payloads, encryption, and MACs add
constant per-block cost that the DRAM model charges uniformly, so carrying
bytes around would change nothing the paper measures.

The tree supports the per-level bucket sizes that IR-Alloc introduces
(Section IV-B): ``z_per_level[l]`` slots per bucket at level ``l``, with 0
meaning the level holds no memory-backed slots at all.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Tuple

from ..config import ORAMConfig
from ..errors import ProtocolError
from ..perf.native import fastpath as _native

#: Marker for an unoccupied slot (a "dummy block" once encrypted).
EMPTY = -1


class ORAMTree:
    """Binary tree of buckets addressed by ``(level, position)``.

    Buckets are stored in heap order (``index = (1 << level) - 1 + pos``)
    in a dense list for trees up to :data:`DENSE_LEVEL_LIMIT` levels and in
    a lazily populated dict beyond that (so paper-scale L=25 configurations
    remain constructible).
    """

    DENSE_LEVEL_LIMIT = 21

    #: paths whose (level, slots) sequences are memoized at once
    PATH_CACHE_LIMIT = 1 << 16

    def __init__(self, config: ORAMConfig) -> None:
        self.config = config
        self.levels = config.levels
        self.z_per_level = config.z_per_level
        self.level_used: List[int] = [0] * self.levels
        self.level_slots: List[int] = [
            z << level for level, z in enumerate(self.z_per_level)
        ]
        self._dense = self.levels <= self.DENSE_LEVEL_LIMIT
        if self._dense:
            self._buckets: List[Optional[List[int]]] = [None] * (
                (1 << self.levels) - 1
            )
        else:
            self._sparse: Dict[int, List[int]] = {}
        #: leaf -> [(level, slots), ...] for z>0 levels.  Slot lists are
        #: created once and only ever mutated in place, so caching the
        #: references is safe.
        self._path_slots_cache: Dict[int, List[Tuple[int, List[int]]]] = {}

    # -- bucket access -------------------------------------------------------
    @staticmethod
    def bucket_index(level: int, position: int) -> int:
        return (1 << level) - 1 + position

    def bucket(self, level: int, position: int) -> List[int]:
        """The slot array of one bucket (created empty on first touch)."""
        if not 0 <= level < self.levels:
            raise ProtocolError(f"level {level} out of range")
        if not 0 <= position < (1 << level):
            raise ProtocolError(f"position {position} invalid at level {level}")
        index = self.bucket_index(level, position)
        if self._dense:
            slots = self._buckets[index]
            if slots is None:
                slots = [EMPTY] * self.z_per_level[level]
                self._buckets[index] = slots
            return slots
        slots = self._sparse.get(index)
        if slots is None:
            slots = [EMPTY] * self.z_per_level[level]
            self._sparse[index] = slots
        return slots

    # -- path geometry ----------------------------------------------------------
    def path_position(self, leaf: int, level: int) -> int:
        return leaf >> (self.levels - 1 - level)

    def path_buckets(
        self, leaf: int, from_level: int = 0
    ) -> Iterable[Tuple[int, int, List[int]]]:
        """Yield ``(level, position, slots)`` along the path to ``leaf``."""
        for level in range(from_level, self.levels):
            if self.z_per_level[level] == 0:
                continue
            position = self.path_position(leaf, level)
            yield level, position, self.bucket(level, position)

    def iter_buckets(self) -> Iterable[Tuple[int, int, List[int]]]:
        """Yield ``(level, position, slots)`` for every materialized bucket.

        A bucket that was never touched holds no real blocks, so this
        covers every resident block without materializing the rest of the
        tree — safe at paper scale (L=25), where the conformance auditor
        sweeps the tree during live runs.
        """
        if self._dense:
            entries: Iterable[Tuple[int, List[int]]] = (
                (index, slots)
                for index, slots in enumerate(self._buckets)
                if slots is not None
            )
        else:
            entries = self._sparse.items()
        for index, slots in entries:
            level = (index + 1).bit_length() - 1
            yield level, index - ((1 << level) - 1), slots

    def deepest_common_level(self, leaf_a: int, leaf_b: int) -> int:
        """Deepest level shared by the paths to two leaves (0 = root only)."""
        xor = leaf_a ^ leaf_b
        return (self.levels - 1) - xor.bit_length()

    def path_slots(self, leaf: int) -> List[Tuple[int, List[int]]]:
        """Memoized ``(level, slots)`` pairs of a path's z>0 buckets."""
        cached = self._path_slots_cache.get(leaf)
        if cached is not None:
            return cached
        shift = self.levels - 1
        pairs = [
            (level, self.bucket(level, leaf >> (shift - level)))
            for level in range(self.levels)
            if self.z_per_level[level] != 0
        ]
        if len(self._path_slots_cache) >= self.PATH_CACHE_LIMIT:
            self._path_slots_cache.clear()
        self._path_slots_cache[leaf] = pairs
        return pairs

    # -- slot mutation -----------------------------------------------------------
    def read_and_clear(
        self, leaf: int, from_level: int = 0
    ) -> List[Tuple[int, int]]:
        """Remove every real block on a path; return ``(block, level)`` pairs.

        This is the read phase of a path access: every slot is fetched, real
        blocks go to the caller (the stash), dummies are discarded.
        """
        if from_level == 0:
            pairs = self.path_slots(leaf)
        else:
            pairs = [
                (level, slots)
                for level, _, slots in self.path_buckets(leaf, from_level)
            ]
        if _native is not None:
            return _native.read_and_clear(pairs, self.level_used, EMPTY)
        removed: List[Tuple[int, int]] = []
        level_used = self.level_used
        for level, slots in pairs:
            for i, block in enumerate(slots):
                if block != EMPTY:
                    removed.append((block, level))
                    slots[i] = EMPTY
                    level_used[level] -= 1
        return removed

    def place(self, level: int, position: int, block: int) -> bool:
        """Put ``block`` into the first free slot of a bucket, if any."""
        slots = self.bucket(level, position)
        for i, occupant in enumerate(slots):
            if occupant == EMPTY:
                slots[i] = block
                self.level_used[level] += 1
                return True
        return False

    def free_slots(self, level: int, position: int) -> int:
        slots = self.bucket(level, position)
        return sum(1 for occupant in slots if occupant == EMPTY)

    # -- occupancy queries ----------------------------------------------------------
    def level_utilization(self) -> List[float]:
        """Fraction of slots holding real blocks, per level (Fig. 3)."""
        result = []
        for used, slots in zip(self.level_used, self.level_slots):
            result.append(used / slots if slots else 0.0)
        return result

    def total_used(self) -> int:
        return sum(self.level_used)

    def initialize(self, blocks: Iterable[int], leaf_of, rng: random.Random):
        """Place blocks into the tree bottom-up along their assigned paths.

        ``leaf_of`` maps block -> leaf.  Blocks whose entire path is full are
        returned to the caller (they start life in the stash).  A shuffled
        placement order avoids systematic bias.
        """
        overflow: List[int] = []
        block_list = list(blocks)
        rng.shuffle(block_list)
        if self.total_used():
            # Pre-occupied tree: fall back to per-slot placement.
            for block in block_list:
                leaf = leaf_of(block)
                for level in range(self.levels - 1, -1, -1):
                    if self.z_per_level[level] == 0:
                        continue
                    if self.place(level, self.path_position(leaf, level), block):
                        break
                else:
                    overflow.append(block)
            return overflow
        # Bulk placement into a fresh tree only ever fills the first empty
        # slot of each bucket, so per-bucket fill counters stand in for slot
        # scans; buckets materialize once at the end.
        levels = self.levels
        shift = levels - 1
        z_per_level = self.z_per_level
        level_used = self.level_used
        fill: Dict[int, int] = {}
        pending: Dict[int, List[int]] = {}
        active_levels = [
            level for level in range(levels - 1, -1, -1)
            if z_per_level[level] != 0
        ]
        for block in block_list:
            leaf = leaf_of(block)
            for level in active_levels:
                index = (1 << level) - 1 + (leaf >> (shift - level))
                count = fill.get(index, 0)
                if count < z_per_level[level]:
                    fill[index] = count + 1
                    bucket_blocks = pending.get(index)
                    if bucket_blocks is None:
                        pending[index] = bucket_blocks = []
                    bucket_blocks.append(block)
                    level_used[level] += 1
                    break
            else:
                overflow.append(block)
        for index, bucket_blocks in pending.items():
            level = (index + 1).bit_length() - 1
            position = index - ((1 << level) - 1)
            slots = self.bucket(level, position)
            slots[: len(bucket_blocks)] = bucket_blocks
        return overflow
