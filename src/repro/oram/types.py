"""Shared vocabulary of the ORAM subsystem.

The paper classifies path accesses into three externally indistinguishable
types (Section III-A):

* ``PT_d`` — paths fetching requested data blocks (:attr:`PathType.DATA`);
* ``PT_p`` — paths fetching position-map blocks, split into PosMap1
  (:attr:`PathType.POS1`) and PosMap2 (:attr:`PathType.POS2`) fetches;
* ``PT_m`` — dummy paths inserted by the timing-channel defense
  (:attr:`PathType.DUMMY`).

Two further internal varieties exist: background-eviction paths
(:attr:`PathType.EVICTION`, Ren et al.) and dummy slots converted to useful
early write-backs by IR-DWB (:attr:`PathType.DWB`).  Externally all of them
present the identical fixed-rate, fixed-shape path signature.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from ..config import ORAMConfig


class PathType(enum.Enum):
    """Why a particular tree path was accessed."""

    DATA = "PTd"
    POS1 = "PTp.pos1"
    POS2 = "PTp.pos2"
    DUMMY = "PTm"
    EVICTION = "evict"
    DWB = "dwb"

    @property
    def is_posmap(self) -> bool:
        return self in (PathType.POS1, PathType.POS2)


class BlockKind(enum.Enum):
    """Which region of the merged (Freecursive) namespace a block lives in."""

    USER = "user"
    POSMAP1 = "posmap1"
    POSMAP2 = "posmap2"


class RequestKind(enum.Enum):
    """What the LLC wants from the ORAM controller."""

    READ = "read"        # demand fetch (read miss, or write-allocate fetch)
    WRITEBACK = "wb"     # dirty line evicted from the LLC
    REINSERT = "reinsert"  # LLC-D: evicted line returns to the tree


@dataclass
class Request:
    """One LLC-to-ORAM request.

    ``arrival`` is the cycle at which the request became visible to the
    controller; ``completion`` is filled in when the data phase that serves
    it finishes.  ``waiters`` counts merged duplicate demands (MSHR-style).
    """

    block: int
    kind: RequestKind
    arrival: int
    is_write: bool = False
    completion: Optional[int] = None
    waiters: int = 1
    paths_used: int = 0

    def merge(self) -> None:
        self.waiters += 1


class Namespace:
    """Address arithmetic of the merged Freecursive namespace.

    Blocks ``[0, N)`` are user data; ``[N, N + P1)`` are PosMap1 blocks;
    ``[N + P1, N + P1 + P2)`` are PosMap2 blocks.  PosMap3 (one entry per
    PosMap2 block) is kept entirely on chip.
    """

    def __init__(self, config: ORAMConfig) -> None:
        self.config = config
        self.user_blocks = config.user_blocks
        self.fanout = config.fanout
        self.posmap1_base = self.user_blocks
        self.posmap2_base = self.posmap1_base + config.posmap1_blocks
        self.total_blocks = self.posmap2_base + config.posmap2_blocks

    def kind_of(self, block: int) -> BlockKind:
        if block < 0 or block >= self.total_blocks:
            raise ValueError(f"block {block} outside namespace")
        if block < self.posmap1_base:
            return BlockKind.USER
        if block < self.posmap2_base:
            return BlockKind.POSMAP1
        return BlockKind.POSMAP2

    def posmap1_block(self, user_block: int) -> int:
        """The PosMap1 block holding ``user_block``'s path mapping."""
        return self.posmap1_base + user_block // self.fanout

    def posmap2_block(self, posmap1_blk: int) -> int:
        """The PosMap2 block holding a PosMap1 block's path mapping."""
        index = posmap1_blk - self.posmap1_base
        return self.posmap2_base + index // self.fanout

    def posmap3_index(self, posmap2_blk: int) -> int:
        """On-chip PosMap3 slot holding a PosMap2 block's path mapping."""
        return posmap2_blk - self.posmap2_base

    def parent_block(self, block: int) -> Optional[int]:
        """The PosMap block whose entry must change when ``block`` remaps.

        Returns ``None`` for PosMap2 blocks — their mappings live in the
        on-chip PosMap3 and updating them costs nothing observable.
        """
        kind = self.kind_of(block)
        if kind is BlockKind.USER:
            return self.posmap1_block(block)
        if kind is BlockKind.POSMAP1:
            return self.posmap2_block(block)
        return None

    def path_type_for(self, block: int) -> PathType:
        """The externally counted path type of a fetch of ``block``."""
        kind = self.kind_of(block)
        if kind is BlockKind.USER:
            return PathType.DATA
        if kind is BlockKind.POSMAP1:
            return PathType.POS1
        return PathType.POS2


@dataclass
class PathAccessRecord:
    """Observable footprint of one path access (for the security checker)."""

    issue_cycle: int
    leaf: int
    path_type: PathType
    read_addresses: List[int] = field(default_factory=list)
    write_addresses: List[int] = field(default_factory=list)
