"""Analysis utilities: design-space sweeps and report generation."""

from .report import render_markdown, write_report
from .sweep import SweepResult, sweep_parameter

__all__ = ["sweep_parameter", "SweepResult", "render_markdown", "write_report"]
