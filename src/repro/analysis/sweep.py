"""Design-space sweeps over the platform's knobs.

DESIGN.md calls out several design choices whose sensitivity is worth
measuring beyond the paper's own figures: the issue interval T, the number
of cached top levels, the PLB size, the stash eviction threshold, and the
S-Stash associativity.  :func:`sweep_parameter` runs any of them over a
value list and reports cycles, path counts, and the mechanism counters
that explain the trend.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..config import SystemConfig
from ..errors import ConfigError
from ..perf.parallel import SimPoint, fanout
from ..sim.results import SimulationResult
from ..sim.runner import run_benchmark  # noqa: F401  (re-exported API)

#: knob name -> function(config, value) -> new config
KNOBS: Dict[str, Callable[[SystemConfig, Any], SystemConfig]] = {
    "issue_interval": lambda c, v: c.with_oram(
        replace(c.oram, issue_interval=v)
    ),
    "top_cached_levels": lambda c, v: c.with_oram(
        replace(c.oram, top_cached_levels=v)
    ),
    "plb_sets": lambda c, v: c.with_oram(replace(c.oram, plb_sets=v)),
    "stash_capacity": lambda c, v: c.with_oram(
        replace(c.oram, stash_capacity=v, eviction_threshold=(v * 3) // 4)
    ),
    "eviction_threshold": lambda c, v: c.with_oram(
        replace(c.oram, eviction_threshold=v)
    ),
}


@dataclass
class SweepPoint:
    value: Any
    result: SimulationResult

    @property
    def cycles(self) -> int:
        return self.result.cycles


@dataclass
class SweepResult:
    """Results of one parameter sweep on one scheme+workload."""

    parameter: str
    scheme: str
    workload: str
    points: List[SweepPoint] = field(default_factory=list)

    def speedups(self) -> List[float]:
        """Speedup of each point relative to the first."""
        if not self.points:
            return []
        base = self.points[0].cycles
        return [base / max(point.cycles, 1) for point in self.points]

    def best(self) -> SweepPoint:
        return min(self.points, key=lambda point: point.cycles)

    def table(self) -> List[List[Any]]:
        rows = []
        for point, speedup in zip(self.points, self.speedups()):
            result = point.result
            rows.append(
                [
                    point.value,
                    result.cycles,
                    round(speedup, 3),
                    int(result.total_paths()),
                    int(result.posmap_paths()),
                    round(result.dummy_fraction(), 3),
                    int(result.background_evictions()),
                ]
            )
        return rows

    HEADERS = [
        "value",
        "cycles",
        "speedup",
        "paths",
        "posmap paths",
        "dummy frac",
        "evictions",
    ]


def sweep_parameter(
    parameter: str,
    values: Sequence[Any],
    scheme: str = "Baseline",
    workload: str = "mix",
    config: Optional[SystemConfig] = None,
    records: int = 3000,
    seed: int = 7,
    jobs: int = 1,
) -> SweepResult:
    """Run ``scheme`` on ``workload`` across every value of one knob.

    With ``jobs > 1`` the points fan out over worker processes (each point
    is an independent simulation); results are identical to the serial
    run and stay in ``values`` order.
    """
    if parameter not in KNOBS:
        raise ConfigError(
            f"unknown sweep parameter {parameter!r}; options: {sorted(KNOBS)}"
        )
    base = config if config is not None else SystemConfig.scaled()
    sweep = SweepResult(parameter=parameter, scheme=scheme, workload=workload)
    points = [
        SimPoint(
            scheme,
            workload,
            records=records,
            seed=seed,
            config=KNOBS[parameter](base, value),
        )
        for value in values
    ]
    for value, item in zip(values, fanout(points, jobs=jobs)):
        sweep.points.append(SweepPoint(value=value, result=item.result))
    return sweep
