"""Render experiment results into a Markdown report.

Turns a list of :class:`~repro.experiments.common.ExperimentResult` (or
:class:`~repro.analysis.sweep.SweepResult`) objects into a single document
— the machinery behind regenerating EXPERIMENTS-style write-ups from a
fresh run.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Union

from ..experiments.common import ExperimentResult
from .sweep import SweepResult

Renderable = Union[ExperimentResult, SweepResult]


def _markdown_table(headers: List[str], rows: List[List[object]]) -> List[str]:
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.3f}"
        return str(cell)

    lines = [
        "| " + " | ".join(str(h) for h in headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(fmt(cell) for cell in row) + " |")
    return lines


def render_markdown(results: Iterable[Renderable], title: str = "Results") -> str:
    lines = [f"# {title}", ""]
    for result in results:
        if isinstance(result, ExperimentResult):
            lines.append(f"## {result.experiment_id}: {result.title}")
            lines.append("")
            if result.paper_claim:
                lines.append(f"*Paper:* {result.paper_claim}")
                lines.append("")
            lines.extend(_markdown_table(result.headers, result.rows))
            for note in result.notes:
                lines.append("")
                lines.append(f"> {note}")
        elif isinstance(result, SweepResult):
            lines.append(
                f"## Sweep: {result.parameter} "
                f"({result.scheme} on {result.workload})"
            )
            lines.append("")
            lines.extend(_markdown_table(SweepResult.HEADERS, result.table()))
        else:  # pragma: no cover - defensive
            raise TypeError(f"cannot render {type(result)!r}")
        lines.append("")
    return "\n".join(lines)


def write_report(
    results: Iterable[Renderable],
    path: Union[str, Path],
    title: str = "Results",
) -> Path:
    """Render and write the report; returns the path written."""
    destination = Path(path)
    destination.write_text(render_markdown(results, title))
    return destination
