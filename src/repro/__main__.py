"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
run         Run one scheme on one workload and print the result summary.
compare     Run several schemes on one workload, normalized to the first.
experiments Regenerate the paper's tables/figures (wraps run_all).
bench       Run the performance suite; write/check BENCH_*.json reports.
inspect     Summarize a JSONL event trace written by ``--trace-out``.
schemes     List available schemes.
workloads   List available workloads.
zsearch     Run the IR-Alloc greedy Z-search on a given tree geometry.
validate    Conformance suite: golden corpus, lockstep oracle, fuzzer.

Every simulating command shares the same platform flags (``--config``,
``--levels``, ``--records``, ``--seed``, ``--jobs``) and builds its runs
through :mod:`repro.api`.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from . import api
from .core.schemes import SCHEMES
from .traces.benchmarks import BENCHMARKS


def _add_platform_args(
    parser: argparse.ArgumentParser, jobs: bool = True
) -> None:
    parser.add_argument("--config", choices=("scaled", "paper"),
                        default="scaled",
                        help="named platform (default scaled)")
    parser.add_argument("--levels", type=int, default=None,
                        help="ORAM tree levels (scaled default 15; "
                             "paper uses 25)")
    parser.add_argument("--records", type=int, default=5000,
                        help="trace records to simulate")
    parser.add_argument("--seed", type=int, default=7,
                        help="simulation seed")
    if jobs:
        parser.add_argument("--jobs", type=int, default=1,
                            help="independent runs in parallel")


def _add_obs_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace-out", default=None, metavar="FILE",
                        help="stream the JSONL event trace here")
    parser.add_argument("--metrics-out", default=None, metavar="FILE",
                        help="write the final stats registry as JSON here")
    parser.add_argument("--progress-every", type=int, default=0,
                        metavar="N",
                        help="emit a progress snapshot every N paths "
                             "(requires tracing)")


def _spec(args: argparse.Namespace, scheme: str) -> api.RunSpec:
    return api.RunSpec(
        scheme=scheme,
        workload=args.workload,
        records=args.records,
        seed=args.seed,
        config_name=args.config,
        levels=args.levels,
        obs=api.ObsOptions(
            trace_out=getattr(args, "trace_out", None),
            metrics_out=getattr(args, "metrics_out", None),
            progress_every=getattr(args, "progress_every", 0),
        ),
    )


def _print_result(name: str, result, baseline=None) -> None:
    speedup = "" if baseline is None else (
        f"  speedup={baseline.cycles / result.cycles:5.2f}x"
    )
    mix = ", ".join(
        f"{key}={value:.1%}"
        for key, value in result.path_type_distribution().items()
        if value > 0.0005
    )
    print(f"{name:<26} cycles={result.cycles:>12,}{speedup}")
    print(f"{'':<26} paths={result.total_paths():>8,.0f}  [{mix}]")


def cmd_run(args: argparse.Namespace) -> int:
    if args.resume:
        out = api.resume_run(
            args.resume,
            obs=api.ObsOptions(
                trace_out=getattr(args, "trace_out", None),
                metrics_out=getattr(args, "metrics_out", None),
                progress_every=getattr(args, "progress_every", 0),
            ),
        )
        label = f"{out.spec.scheme} on {out.spec.workload} (resumed)"
    else:
        if not args.scheme or not args.workload:
            print("error: scheme and workload are required unless --resume "
                  "is given", file=sys.stderr)
            return 2
        out = api.run(
            _spec(args, args.scheme),
            checkpoint_every=args.checkpoint_every,
            checkpoint_path=(
                args.checkpoint_out
                if args.checkpoint_out or not args.checkpoint_every
                else "repro.ckpt"
            ),
        )
        label = f"{args.scheme} on {args.workload}"
    _print_result(label, out.result)
    if out.breakdown is not None:
        print(f"{'':<26} busy: " + ", ".join(
            f"{key}={value:.1%}"
            for key, value in out.breakdown.fractions().items()
            if value > 0.0005
        ))
    if args.trace_out:
        print(f"trace written to {args.trace_out}")
    if args.metrics_out:
        print(f"metrics written to {args.metrics_out}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    specs = [_spec(args, scheme) for scheme in args.schemes]
    outs = api.run_many(specs, jobs=args.jobs)
    baseline = outs[0].result
    for scheme, out in zip(args.schemes, outs):
        _print_result(
            scheme, out.result, None if out.result is baseline else baseline
        )
    return 0


def cmd_experiments(args: argparse.Namespace) -> int:
    from .experiments import run_all

    # The harness reads its knobs from the environment so they survive
    # the trip into --jobs worker processes.
    if args.records is not None:
        os.environ["REPRO_RECORDS"] = str(args.records)
    if args.seed is not None:
        os.environ["REPRO_SEED"] = str(args.seed)
    if args.config is not None:
        os.environ["REPRO_CONFIG"] = args.config
    run_all.main(args.ids, jobs=args.jobs)
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from .perf import bench

    reference = None
    if args.check:
        # Load before the (slow) run so a bad path fails fast.
        try:
            reference = bench.load_report(args.check)
        except OSError as exc:
            print(f"cannot read reference report: {exc}", file=sys.stderr)
            return 1
    report = bench.run_bench(
        smoke=args.smoke, jobs=args.jobs, seed=args.seed,
        trace_out=args.trace_out, profile=args.profile,
    )
    print(bench.format_report(report))
    if args.trace_out:
        print(f"\nper-point traces written under {args.trace_out}/")
    if args.out:
        bench.save_report(report, args.out)
        print(f"\nreport written to {args.out}")
    if args.check:
        failures = bench.check_report(
            report, reference, max_regression=args.max_regression
        )
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            return 1
        print(
            f"\ncheck vs {args.check}: OK "
            f"(max regression {args.max_regression:.1f}x)"
        )
    return 0


def cmd_inspect(args: argparse.Namespace) -> int:
    from .obs.inspect import format_summary, summarize_trace

    import json

    summary = summarize_trace(args.trace)
    if args.json:
        print(json.dumps(summary, indent=1, sort_keys=True))
    else:
        print(format_summary(summary))
    return 0


def cmd_schemes(_args: argparse.Namespace) -> int:
    for name, scheme in SCHEMES.items():
        print(f"{name:<26} {scheme.description}")
    return 0


def cmd_workloads(_args: argparse.Namespace) -> int:
    for name, model in BENCHMARKS.items():
        print(f"{name:<6} {model.suite:<7} read={model.read_mpki:<6} "
              f"write={model.write_mpki:<6}")
    print(f"{'mix':<6} {'-':<7} three-benchmark mix (gcc/mcf/lbm)")
    print(f"{'random':<6} {'-':<7} uniform random accesses")
    return 0


def cmd_zsearch(args: argparse.Namespace) -> int:
    from .perf.engine import cached_z_allocation

    config = api.RunSpec(
        config_name=args.config, levels=args.levels
    ).resolve_config()
    print(f"searching Z allocation for L={config.oram.levels} "
          f"(uniform PL={config.oram.blocks_per_path()}) ...")
    best = cached_z_allocation(
        config,
        records=args.records,
        seed=args.seed,
        max_space_reduction=args.max_space_reduction,
        max_eviction_increase=args.max_eviction_increase,
    )
    print(f"z vector : {list(best.z_per_level)}")
    print(f"PL       : {best.blocks_per_path()} blocks per path")
    print(f"space    : -{best.space_reduction_vs_uniform():.2%} vs uniform")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="IR-ORAM (HPCA 2022) reproduction"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run one scheme on one workload")
    run_p.add_argument("scheme", nargs="?", choices=sorted(SCHEMES))
    run_p.add_argument("workload", nargs="?")
    _add_platform_args(run_p, jobs=False)
    _add_obs_args(run_p)
    run_p.add_argument("--checkpoint-every", type=int, default=0,
                       metavar="N",
                       help="write a resumable checkpoint every N issued "
                            "paths")
    run_p.add_argument("--checkpoint-out", default=None, metavar="FILE",
                       help="checkpoint destination "
                            "(default repro.ckpt; each write replaces it)")
    run_p.add_argument("--resume", default=None, metavar="CKPT",
                       help="resume a checkpointed run instead of starting "
                            "one; finishes bit-identical to the "
                            "uninterrupted run")
    run_p.set_defaults(func=cmd_run)

    cmp_p = sub.add_parser("compare", help="compare schemes on a workload")
    cmp_p.add_argument("workload")
    cmp_p.add_argument(
        "--schemes", nargs="+",
        default=["Baseline", "IR-Alloc", "IR-Stash", "IR-DWB", "IR-ORAM"],
    )
    _add_platform_args(cmp_p)
    cmp_p.set_defaults(func=cmd_compare)

    exp_p = sub.add_parser("experiments", help="regenerate tables/figures")
    exp_p.add_argument("ids", nargs="*", help='e.g. "Fig. 10" "Table II"')
    exp_p.add_argument("--jobs", type=int, default=1,
                       help="experiment regenerators run in parallel")
    exp_p.add_argument("--records", type=int, default=None,
                       help="trace records per workload (REPRO_RECORDS)")
    exp_p.add_argument("--seed", type=int, default=None,
                       help="base seed of the matrix (REPRO_SEED)")
    exp_p.add_argument("--config", choices=("scaled", "paper"),
                       default=None,
                       help="named platform (REPRO_CONFIG)")
    exp_p.set_defaults(func=cmd_experiments)

    bench_p = sub.add_parser(
        "bench", help="performance suite (full-system + hot-path kernel)"
    )
    bench_p.add_argument("--smoke", action="store_true",
                         help="small fast variant (used by CI)")
    bench_p.add_argument("--jobs", type=int, default=1,
                         help="simulation points run in parallel")
    bench_p.add_argument("--seed", type=int, default=7,
                         help="simulation seed for every point")
    bench_p.add_argument("--out", default=None,
                         help="write the JSON report here")
    bench_p.add_argument("--check", default=None,
                         help="reference BENCH_*.json to compare against")
    bench_p.add_argument("--max-regression", type=float, default=2.0,
                         help="allowed throughput regression factor")
    bench_p.add_argument("--trace-out", default=None, metavar="DIR",
                         help="write per-point JSONL traces under this "
                              "directory")
    bench_p.add_argument("--profile", action="store_true",
                         help="attach cProfile top-N hotspots per phase "
                              "(forces --jobs 1; numbers not comparable)")
    bench_p.set_defaults(func=cmd_bench)

    ins_p = sub.add_parser(
        "inspect", help="summarize a JSONL event trace"
    )
    ins_p.add_argument("trace", help="trace file written by --trace-out")
    ins_p.add_argument("--json", action="store_true",
                       help="print the raw summary dictionary as JSON")
    ins_p.set_defaults(func=cmd_inspect)

    sub.add_parser("schemes", help="list schemes").set_defaults(
        func=cmd_schemes
    )
    sub.add_parser("workloads", help="list workloads").set_defaults(
        func=cmd_workloads
    )

    zs_p = sub.add_parser("zsearch", help="greedy IR-Alloc Z-search")
    _add_platform_args(zs_p, jobs=False)
    zs_p.add_argument("--max-space-reduction", type=float, default=0.03)
    zs_p.add_argument("--max-eviction-increase", type=float, default=0.15)
    zs_p.set_defaults(func=cmd_zsearch)

    from .validate import cli as validate_cli

    validate_cli.add_parser(sub)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; that is not an error.
        return 0


if __name__ == "__main__":
    sys.exit(main())
