"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
run         Run one scheme on one workload and print the result summary.
compare     Run several schemes on one workload, normalized to the first.
experiments Regenerate the paper's tables/figures (wraps run_all).
bench       Run the performance suite; write/check BENCH_*.json reports.
schemes     List available schemes.
workloads   List available workloads.
zsearch     Run the IR-Alloc greedy Z-search on a given tree geometry.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .config import SystemConfig
from .core.ir_alloc import find_z_allocation
from .core.schemes import SCHEMES
from .sim.runner import random_trace_evaluator, run_benchmark
from .traces.benchmarks import BENCHMARKS


def _add_platform_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--levels", type=int, default=15,
                        help="ORAM tree levels (default 15; paper uses 25)")
    parser.add_argument("--records", type=int, default=5000,
                        help="trace records to simulate")
    parser.add_argument("--seed", type=int, default=7)


def _platform(args: argparse.Namespace) -> SystemConfig:
    return SystemConfig.scaled(levels=args.levels)


def _print_result(name: str, result, baseline=None) -> None:
    speedup = "" if baseline is None else (
        f"  speedup={baseline.cycles / result.cycles:5.2f}x"
    )
    mix = ", ".join(
        f"{key}={value:.1%}"
        for key, value in result.path_type_distribution().items()
        if value > 0.0005
    )
    print(f"{name:<26} cycles={result.cycles:>12,}{speedup}")
    print(f"{'':<26} paths={result.total_paths():>8,.0f}  [{mix}]")


def cmd_run(args: argparse.Namespace) -> int:
    config = _platform(args)
    result = run_benchmark(
        args.scheme, args.workload, config, records=args.records,
        seed=args.seed,
    )
    _print_result(f"{args.scheme} on {args.workload}", result)
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    config = _platform(args)
    baseline = None
    for scheme in args.schemes:
        result = run_benchmark(
            scheme, args.workload, config, records=args.records,
            seed=args.seed,
        )
        _print_result(scheme, result, baseline)
        if baseline is None:
            baseline = result
    return 0


def cmd_experiments(args: argparse.Namespace) -> int:
    from .experiments import run_all

    run_all.main(args.ids, jobs=args.jobs)
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from .perf import bench

    reference = None
    if args.check:
        # Load before the (slow) run so a bad path fails fast.
        try:
            reference = bench.load_report(args.check)
        except OSError as exc:
            print(f"cannot read reference report: {exc}", file=sys.stderr)
            return 1
    report = bench.run_bench(smoke=args.smoke, jobs=args.jobs)
    print(bench.format_report(report))
    if args.out:
        bench.save_report(report, args.out)
        print(f"\nreport written to {args.out}")
    if args.check:
        failures = bench.check_report(
            report, reference, max_regression=args.max_regression
        )
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            return 1
        print(
            f"\ncheck vs {args.check}: OK "
            f"(max regression {args.max_regression:.1f}x)"
        )
    return 0


def cmd_schemes(_args: argparse.Namespace) -> int:
    for name, scheme in SCHEMES.items():
        print(f"{name:<26} {scheme.description}")
    return 0


def cmd_workloads(_args: argparse.Namespace) -> int:
    for name, model in BENCHMARKS.items():
        print(f"{name:<6} {model.suite:<7} read={model.read_mpki:<6} "
              f"write={model.write_mpki:<6}")
    print(f"{'mix':<6} {'-':<7} three-benchmark mix (gcc/mcf/lbm)")
    print(f"{'random':<6} {'-':<7} uniform random accesses")
    return 0


def cmd_zsearch(args: argparse.Namespace) -> int:
    config = _platform(args)
    evaluate = random_trace_evaluator(config, records=args.records,
                                      seed=args.seed)
    print(f"searching Z allocation for L={config.oram.levels} "
          f"(uniform PL={config.oram.blocks_per_path()}) ...")
    best = find_z_allocation(
        config.oram,
        evaluate,
        max_space_reduction=args.max_space_reduction,
        max_eviction_increase=args.max_eviction_increase,
    )
    print(f"z vector : {list(best.z_per_level)}")
    print(f"PL       : {best.blocks_per_path()} blocks per path")
    print(f"space    : -{best.space_reduction_vs_uniform():.2%} vs uniform")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="IR-ORAM (HPCA 2022) reproduction"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run one scheme on one workload")
    run_p.add_argument("scheme", choices=sorted(SCHEMES))
    run_p.add_argument("workload")
    _add_platform_args(run_p)
    run_p.set_defaults(func=cmd_run)

    cmp_p = sub.add_parser("compare", help="compare schemes on a workload")
    cmp_p.add_argument("workload")
    cmp_p.add_argument(
        "--schemes", nargs="+",
        default=["Baseline", "IR-Alloc", "IR-Stash", "IR-DWB", "IR-ORAM"],
    )
    _add_platform_args(cmp_p)
    cmp_p.set_defaults(func=cmd_compare)

    exp_p = sub.add_parser("experiments", help="regenerate tables/figures")
    exp_p.add_argument("ids", nargs="*", help='e.g. "Fig. 10" "Table II"')
    exp_p.add_argument("--jobs", type=int, default=1,
                       help="experiment regenerators run in parallel")
    exp_p.set_defaults(func=cmd_experiments)

    bench_p = sub.add_parser(
        "bench", help="performance suite (full-system + hot-path kernel)"
    )
    bench_p.add_argument("--smoke", action="store_true",
                         help="small fast variant (used by CI)")
    bench_p.add_argument("--jobs", type=int, default=1,
                         help="simulation points run in parallel")
    bench_p.add_argument("--out", default=None,
                         help="write the JSON report here")
    bench_p.add_argument("--check", default=None,
                         help="reference BENCH_*.json to compare against")
    bench_p.add_argument("--max-regression", type=float, default=2.0,
                         help="allowed throughput regression factor")
    bench_p.set_defaults(func=cmd_bench)

    sub.add_parser("schemes", help="list schemes").set_defaults(
        func=cmd_schemes
    )
    sub.add_parser("workloads", help="list workloads").set_defaults(
        func=cmd_workloads
    )

    zs_p = sub.add_parser("zsearch", help="greedy IR-Alloc Z-search")
    _add_platform_args(zs_p)
    zs_p.add_argument("--max-space-reduction", type=float, default=0.03)
    zs_p.add_argument("--max-eviction-increase", type=float, default=0.15)
    zs_p.set_defaults(func=cmd_zsearch)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
